"""Unit tests for repro.viz: ASCII charts, MRA plots, CCDFs, box plots."""

import random

import numpy as np
import pytest

from repro.core.mra import profile, segment_ratio_matrix
from repro.net import addr
from repro.viz.ascii import AsciiChart
from repro.viz.boxplot import BoxStats, render_ascii, segment_box_stats
from repro.viz.ccdf import CcdfPlot, ccdf_points
from repro.viz.mra_plot import MraPlot, mra_plot


def p(text: str) -> int:
    return addr.parse(text)


class TestAsciiChart:
    def test_renders_title_and_legend(self):
        chart = AsciiChart(title="demo", width=30, height=8)
        chart.add_series("s1", [(0, 1), (1, 2)])
        output = chart.render()
        assert "demo" in output
        assert "s1" in output

    def test_empty_chart(self):
        chart = AsciiChart()
        assert "(no data)" in chart.render()

    def test_log_axis_drops_nonpositive(self):
        chart = AsciiChart(log_y=True, width=20, height=5)
        chart.add_series("s", [(0, 0.0), (1, 10.0), (2, 100.0)])
        output = chart.render()
        assert output  # renders without error

    def test_constant_series(self):
        chart = AsciiChart(width=20, height=5)
        chart.add_series("flat", [(0, 5), (1, 5)])
        assert "flat" in chart.render()

    def test_marker_cycle(self):
        chart = AsciiChart(width=20, height=5)
        for index in range(9):
            chart.add_series(f"s{index}", [(index, index + 1)])
        assert chart.render()


class TestMraPlot:
    @staticmethod
    def privacy_addresses(count=800, seed=2):
        rng = random.Random(seed)
        high = p("2001:db8:1:2::") >> 64
        return [
            (high << 64) | (rng.getrandbits(64) & ~(1 << 57)) for _ in range(count)
        ]

    @staticmethod
    def dense_addresses(count=200):
        return [p("2400:100:0:8::") + i for i in range(count)]

    def test_series_labels(self):
        plot = mra_plot([1, 2, 3], title="t")
        assert set(plot.series()) == {
            "16-bit segments",
            "4-bit segments",
            "single bits",
        }

    def test_render_contains_size(self):
        plot = mra_plot([1, 2, 3], title="three")
        assert "N=3" in plot.render_ascii()

    def test_rows_cover_all_nybbles(self):
        plot = mra_plot([1, 2, 3])
        rows = plot.rows()
        assert len(rows) == 32
        assert rows[0][0] == 0 and rows[-1][0] == 124

    def test_privacy_signature_features(self):
        plot = mra_plot(self.privacy_addresses())
        assert plot.privacy_plateau() > 1.9
        assert plot.u_bit_dip() == pytest.approx(1.0)
        assert plot.dense_tail_prominence() < 1.2
        assert 64 < plot.iid_flatline_start() < 128

    def test_dense_block_signature(self):
        plot = mra_plot(self.dense_addresses())
        assert plot.dense_tail_prominence() > 1.5
        assert plot.privacy_plateau() < 1.2

    def test_pool_saturation_metric(self):
        # All 2^8 /64 slots of a tiny pool active -> ratio 256 at p=48
        # spread over 16 bits is far from saturation; use a full 16-bit
        # sweep to saturate.
        values = [
            ((p("2600::") >> 64) | slot) << 64 | 1 for slot in range(0, 65536, 64)
        ]
        plot = mra_plot(values)
        assert 0 < plot.pool_saturation() <= 1.0


class TestCcdf:
    def test_points_step_shape(self):
        points = ccdf_points([1, 1, 2, 10])
        assert points[0] == (1.0, 1.0)
        assert points[-1] == (10.0, 0.25)

    def test_empty(self):
        assert ccdf_points([]) == []

    def test_plot_reads_proportions(self):
        plot = CcdfPlot(title="t")
        plot.add("counts", [1, 2, 4, 8])
        assert plot.proportion_at_least("counts", 4) == pytest.approx(0.5)

    def test_render(self):
        plot = CcdfPlot(title="ccdf demo")
        plot.add("a", [1, 10, 100])
        output = plot.render_ascii()
        assert "ccdf demo" in output


class TestBoxplot:
    def test_box_stats_ordering(self):
        stats = BoxStats.from_values([1, 2, 3, 4, 100])
        assert stats.p5 <= stats.p25 <= stats.median <= stats.p75 <= stats.p95
        assert stats.maximum == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_values([])

    def test_segment_stats_from_profiles(self):
        rng = random.Random(5)
        profiles = [
            profile([rng.getrandbits(128) for _ in range(50)]) for _ in range(10)
        ]
        matrix = segment_ratio_matrix(profiles)
        stats = segment_box_stats(matrix)
        assert len(stats) == 8
        for box in stats:
            assert 1.0 <= box.median <= 65536.0

    def test_render_ascii(self):
        stats = [BoxStats(1, 2, 4, 8, 16, 65536)] * 8
        output = render_ascii(stats)
        assert "0-16" in output
        assert "112-128" in output
        assert "^" in output  # the maximum marker

    def test_matrix_must_be_2d(self):
        with pytest.raises(ValueError):
            segment_box_stats(np.zeros(8))
